// Command croupier-randcheck runs the statistical randomness-
// verification sweep: the full NAT-ratio grid × any subset of the four
// peer-sampling systems × several seeds, each run recording a long
// partner-selection trace plus application-level Sample() draws and
// judging them with the internal/randcheck uniformity battery
// (chi-squared partner/sample uniformity, windowed total-variation and
// convergence, per-NAT-class sampling bias).
//
// Usage:
//
//	croupier-randcheck [flags]
//	croupier-randcheck -canary [flags]
//
// Output goes to <out>/randcheck.tsv (one row per run), .json (full
// reports including the window TV series) and randcheck-agg.tsv (one
// row per protocol × ratio, condensed across seeds); a per-aggregate
// summary is printed to stdout. Runs are deterministic: the same grid
// and seeds produce byte-identical outputs at any -parallel setting.
//
// -canary swaps in croupier's deliberately biased weight-by-ID
// selector and inverts the exit criterion: the process fails unless
// every canary run is rejected at the significance level. A CI step
// runs this mode to prove the battery keeps its statistical power.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/randcheck"
	"repro/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "croupier-randcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("croupier-randcheck", flag.ContinueOnError)
	var (
		kindF    = fs.String("kind", "all", "protocol: croupier, cyclon, gozar, nylon, or all")
		ratiosF  = fs.String("ratios", "0.2,0.4,0.6,0.8,1.0", "comma-separated public ratios ω to sweep")
		nodes    = fs.Int("nodes", 200, "total population per run")
		seeds    = fs.Int("seeds", 3, "seeds per grid point (1, 2, ...)")
		seedBase = fs.Int64("seed", 1, "first seed")
		rounds   = fs.Int("rounds", 0, "trace length in gossip rounds (0 = default 200)")
		warmup   = fs.Int("warmup", 0, "warmup rounds before tracing (0 = default 10)")
		window   = fs.Int("window", 0, "sliding-window width in rounds (0 = rounds/4)")
		alpha    = fs.Float64("alpha", 0.01, "significance level for all verdicts")
		loss     = fs.Float64("loss", 0, "packet-loss probability")
		canary   = fs.Bool("canary", false, "run croupier's biased canary selector; exit non-zero unless every run is rejected")
		parallel = fs.Int("parallel", 0, "worker goroutines; 0 = all cores, 1 = sequential (outputs are identical either way)")
		shards   = fs.Int("shards", 1, "kernel shards per simulated world; 0 or 1 = sequential (verdicts are identical at any count)")
		outDir   = fs.String("out", "results/randcheck", "directory for TSV/JSON output")
		verbose  = fs.Bool("v", false, "print one progress line per finished run to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: croupier-randcheck [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	kinds, err := parseKinds(*kindF, *canary)
	if err != nil {
		return err
	}
	ratios, err := parseRatios(*ratiosF)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	sweep := randcheck.Sweep{
		Kinds:  kinds,
		Ratios: ratios,
		Seeds:  seedList(*seedBase, *seeds),
		Nodes:  *nodes,
		Base: randcheck.Config{
			WarmupRounds: *warmup,
			TraceRounds:  *rounds,
			Window:       *window,
			Alpha:        *alpha,
			Loss:         *loss,
			Canary:       *canary,
			Shards:       *shards,
		},
		Workers: *parallel,
	}
	total := len(kinds) * len(ratios) * *seeds
	if *verbose {
		start := time.Now()
		sweep.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "randcheck: %d/%d runs (%.1fs)\n", done, total, time.Since(start).Seconds())
		}
	}
	fmt.Printf("randcheck: %d runs (%d kinds × %d ratios × %d seeds, %d nodes)\n",
		total, len(kinds), len(ratios), *seeds, *nodes)

	reports, err := sweep.Run()
	if err != nil {
		return err
	}
	aggs := randcheck.Aggregates(reports)
	if err := writeOutputs(*outDir, reports, aggs); err != nil {
		return err
	}

	failures := 0
	for _, a := range aggs {
		verdict := "PASS"
		if a.PassFrac < 1 {
			verdict = fmt.Sprintf("PASS %d/%d", int(a.PassFrac*float64(a.Seeds)+0.5), a.Seeds)
		}
		if a.PassFrac == 0 {
			verdict = "FAIL"
		}
		fmt.Printf("  %-9s ω=%.2f  partner_min_p=%-10.3g sample_min_p=%-10.3g class_bias=%.3f  %s\n",
			a.Protocol, a.Ratio, a.PartnerMinP, a.SampleMinP, a.WorstClassBias, verdict)
	}
	for _, r := range reports {
		if !r.Pass {
			failures++
		}
	}

	if *canary {
		// Inverted criterion: the battery proves its power by rejecting
		// every single biased run.
		for _, r := range reports {
			if r.Partner.Pass {
				return fmt.Errorf("canary NOT rejected (%s ω=%.2f seed %d, p=%g): the battery lost its statistical power",
					r.Protocol, r.Ratio, r.Seed, r.Partner.PValue)
			}
		}
		fmt.Printf("canary: all %d biased runs rejected at α=%g — battery power confirmed\n", len(reports), *alpha)
		return nil
	}
	fmt.Printf("randcheck: %d/%d runs passed the full battery (results in %s)\n", len(reports)-failures, len(reports), *outDir)
	return nil
}

// parseKinds resolves the -kind flag; the canary selector exists only
// for croupier, so -canary narrows the default.
func parseKinds(s string, canary bool) ([]world.Kind, error) {
	all := []world.Kind{world.KindCroupier, world.KindCyclon, world.KindGozar, world.KindNylon}
	if s == "all" {
		if canary {
			return []world.Kind{world.KindCroupier}, nil
		}
		return all, nil
	}
	for _, k := range all {
		if k.String() == s {
			if canary && k != world.KindCroupier {
				return nil, fmt.Errorf("-canary only applies to croupier, not %s", s)
			}
			return []world.Kind{k}, nil
		}
	}
	return nil, fmt.Errorf("unknown kind %q (croupier, cyclon, gozar, nylon, all)", s)
}

func parseRatios(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 || r > 1 {
			return nil, fmt.Errorf("bad ratio %q (want values in (0, 1])", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no ratios given")
	}
	return out, nil
}

func seedList(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

func writeOutputs(dir string, reports []*randcheck.Report, aggs []randcheck.Aggregate) error {
	write := func(name string, fn func(*os.File) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		return f.Close()
	}
	if err := write("randcheck.tsv", func(f *os.File) error { return randcheck.WriteTSV(f, reports) }); err != nil {
		return err
	}
	if err := write("randcheck.json", func(f *os.File) error { return randcheck.WriteJSON(f, reports) }); err != nil {
		return err
	}
	return write("randcheck-agg.tsv", func(f *os.File) error { return randcheck.WriteAggregateTSV(f, aggs) })
}
