// Command natprobe runs the paper's distributed NAT-type identification
// protocol (Algorithm 1, §V) over real UDP sockets.
//
// Usage:
//
//	natprobe serve -listen <ip:port> [-forwarder <ip:port>]
//	    Run the public-node side. When a MatchingIpTest arrives, the
//	    ForwardTest is relayed to -forwarder (another natprobe server).
//
//	natprobe probe -helpers <ip:port>[,<ip:port>...] [-timeout 2s] [-probe N] [-json]
//	    Run the node-under-test side against the given helper servers
//	    and print the verdict. With at least two helpers the mapping-
//	    behaviour comparison also runs, separating cone NATs (one
//	    mapped endpoint for every destination) from symmetric ones (a
//	    fresh mapping per destination). -probe limits the reachability
//	    test to the first N helpers — keep at least one helper out of
//	    the probe set so it remains eligible as the forwarder. -json
//	    prints the combined verdict as one machine-readable object
//	    (the real-kernel testlab parses it).
//
//	natprobe demo
//	    Self-contained loopback demonstration: starts two helper
//	    servers and a client in one process and prints the exchange.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/addr"
	"repro/internal/natid"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "natprobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: natprobe serve|probe|demo [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:])
	case "probe":
		return probe(args[1:])
	case "demo":
		return demo()
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, probe or demo)", args[0])
	}
}

func parseEndpoint(s string) (addr.Endpoint, error) {
	udp, err := net.ResolveUDPAddr("udp4", s)
	if err != nil {
		return addr.Endpoint{}, fmt.Errorf("bad endpoint %q: %w", s, err)
	}
	v4 := udp.IP.To4()
	if v4 == nil {
		return addr.Endpoint{}, fmt.Errorf("endpoint %q is not IPv4", s)
	}
	return addr.Endpoint{
		IP:   addr.MakeIP(v4[0], v4[1], v4[2], v4[3]),
		Port: uint16(udp.Port),
	}, nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "0.0.0.0:3478", "UDP address to listen on")
	forwarder := fs.String("forwarder", "", "second public node for ForwardTest relay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	node, err := natid.ListenUDP(*listen)
	if err != nil {
		return err
	}
	defer node.Close()

	var fwd addr.Endpoint
	if *forwarder != "" {
		fwd, err = parseEndpoint(*forwarder)
		if err != nil {
			return err
		}
	}
	node.SetServer(natid.NewServer(node, func(exclude []addr.Endpoint) (addr.Endpoint, bool) {
		if fwd.IsZero() {
			return addr.Endpoint{}, false
		}
		for _, ex := range exclude {
			if ex == fwd {
				return addr.Endpoint{}, false
			}
		}
		return fwd, true
	}))
	fmt.Printf("natprobe server listening on %v (forwarder: %v)\n", node.Endpoint(), fwd)
	select {} // serve until killed
}

func probe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	helpers := fs.String("helpers", "", "comma-separated helper endpoints")
	timeout := fs.Duration("timeout", 2*time.Second, "ForwardResp wait")
	probeN := fs.Int("probe", 0, "probe only the first N helpers for reachability (0 = all)")
	asJSON := fs.Bool("json", false, "print the combined verdict as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *helpers == "" {
		return fmt.Errorf("-helpers is required")
	}
	var all []addr.Endpoint
	for _, h := range strings.Split(*helpers, ",") {
		ep, err := parseEndpoint(strings.TrimSpace(h))
		if err != nil {
			return err
		}
		all = append(all, ep)
	}
	probes := all
	if *probeN > 0 && *probeN < len(all) {
		probes = all[:*probeN]
	}

	node, err := natid.ListenUDP("0.0.0.0:0")
	if err != nil {
		return err
	}
	defer node.Close()

	cls := node.Classify(probes, all, *timeout, nil)
	if *asJSON {
		return printJSON(cls)
	}
	printResult(cls.Result)
	printMapping(cls.Mapping, len(all))
	return nil
}

// printJSON emits the combined verdict as one machine-readable object.
func printJSON(cls natid.Classification) error {
	out := struct {
		Type     string   `json:"type"`
		Observed string   `json:"observed,omitempty"`
		ViaUPnP  bool     `json:"via_upnp,omitempty"`
		Mapping  string   `json:"mapping"`
		Mapped   []string `json:"mapped,omitempty"`
	}{
		Type:    cls.Result.Type.String(),
		ViaUPnP: cls.Result.ViaUPnP,
		Mapping: cls.Mapping.Behavior.String(),
	}
	if !cls.Result.Observed.IsZero() {
		out.Observed = cls.Result.Observed.String()
	}
	for _, ep := range cls.Mapping.Observed {
		out.Mapped = append(out.Mapped, ep.String())
	}
	return json.NewEncoder(os.Stdout).Encode(out)
}

func demo() error {
	second, err := natid.ListenUDP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer second.Close()
	second.SetServer(natid.NewServer(second, func([]addr.Endpoint) (addr.Endpoint, bool) {
		return addr.Endpoint{}, false
	}))

	first, err := natid.ListenUDP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer first.Close()
	fwd := second.Endpoint()
	first.SetServer(natid.NewServer(first, func(exclude []addr.Endpoint) (addr.Endpoint, bool) {
		for _, ex := range exclude {
			if ex == fwd {
				return addr.Endpoint{}, false
			}
		}
		return fwd, true
	}))

	client, err := natid.ListenUDP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer client.Close()

	fmt.Printf("helper 1 (probe target): %v\n", first.Endpoint())
	fmt.Printf("helper 2 (forwarder):    %v\n", second.Endpoint())
	fmt.Printf("client:                  %v\n", client.Endpoint())
	fmt.Println("running MatchingIpTest → ForwardTest → ForwardResp ...")

	results := make(chan natid.Result, 1)
	c := natid.NewClient(client, 2*time.Second, func(r natid.Result) { results <- r })
	client.StartClient(c, []addr.Endpoint{first.Endpoint()}, nil)

	r := <-results
	printResult(r)
	return nil
}

func printResult(r natid.Result) {
	fmt.Printf("NAT type: %v\n", r.Type)
	if !r.Observed.IsZero() {
		fmt.Printf("observed public endpoint: %v\n", r.Observed)
	}
	if r.ViaUPnP {
		fmt.Println("(public via UPnP port mapping)")
	}
	if r.Type == addr.Private && r.Observed.IsZero() {
		fmt.Println("(no ForwardResp received before the timeout — filtering NAT or firewall)")
	}
}

func printMapping(m natid.MappingResult, helpers int) {
	if helpers < 2 {
		fmt.Println("mapping behaviour: skipped (need at least two helpers to compare)")
		return
	}
	fmt.Printf("mapping behaviour: %v", m.Behavior)
	if len(m.Observed) > 0 {
		fmt.Printf(" (observed %v", m.Observed[0])
		for _, ep := range m.Observed[1:] {
			fmt.Printf(", %v", ep)
		}
		fmt.Print(")")
	}
	fmt.Println()
	switch m.Behavior {
	case natid.BehaviorCone:
		fmt.Println("(endpoint-independent mapping: one stable public endpoint for every destination)")
	case natid.BehaviorSymmetric:
		fmt.Println("(per-destination mappings: the public endpoint changes with the destination)")
	case natid.BehaviorUnknown:
		fmt.Println("(fewer than two helpers answered — cannot compare mappings)")
	}
}
