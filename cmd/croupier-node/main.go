// Command croupier-node runs the Croupier peer-sampling service over
// real UDP — the open-internet deployment the paper leaves as future
// work.
//
// Usage:
//
//	croupier-node bootstrap -listen <ip:port>
//	    Run the bootstrap directory.
//
//	croupier-node run -listen <ip:port> -directory <ip:port> -nat public|private [-id N] [-advertise <ip:port>]
//	    Run one node. Determine -nat out-of-band or with `natprobe`;
//	    -advertise overrides the endpoint placed in the node's own
//	    descriptor (e.g. the NAT's public mapping reported by natprobe).
//	    Prints the ratio estimate and a peer sample once per second.
//	    With -metrics-addr, serves Prometheus metrics on /metrics, a
//	    JSON protocol-state snapshot on /state (the real-kernel testlab
//	    scrapes it to rebuild the overlay graph), and the standard
//	    net/http/pprof profiling endpoints. Hardening
//	    knobs: -peer-rate/-global-rate (inbound rate limits),
//	    -max-datagram, -max-pending, -inbox-depth (bounded tables),
//	    -keepalive-every (NAT mapping refresh), -compact-origins-every
//	    (origin-interner eviction). On SIGINT/SIGTERM the node drains
//	    gracefully for up to -drain before the socket is released.
//
//	croupier-node demo [-duration D] [-metrics-addr <ip:port>] [-flood]
//	    Self-contained loopback swarm: a directory plus 5 public and
//	    10 private nodes in one process, reporting convergence. With
//	    -flood, a junk UDP blaster attacks one node so the rate-limit
//	    and oversize counters can be observed on -metrics-addr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/addr"
	"repro/internal/croupier"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/pss"
	"repro/internal/ratelimit"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "croupier-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: croupier-node bootstrap|run|demo [flags]")
	}
	switch args[0] {
	case "bootstrap":
		return runBootstrap(args[1:])
	case "run":
		return runNode(args[1:])
	case "demo":
		return demo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func parseEndpoint(s string) (addr.Endpoint, error) {
	udp, err := net.ResolveUDPAddr("udp4", s)
	if err != nil {
		return addr.Endpoint{}, fmt.Errorf("bad endpoint %q: %w", s, err)
	}
	v4 := udp.IP.To4()
	if v4 == nil {
		return addr.Endpoint{}, fmt.Errorf("endpoint %q is not IPv4", s)
	}
	return addr.Endpoint{IP: addr.MakeIP(v4[0], v4[1], v4[2], v4[3]), Port: uint16(udp.Port)}, nil
}

func runBootstrap(args []string) error {
	fs := flag.NewFlagSet("bootstrap", flag.ContinueOnError)
	listen := fs.String("listen", "0.0.0.0:7000", "UDP address to listen on")
	ttl := fs.Duration("ttl", 30*time.Second, "registration expiry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := deploy.ListenBootstrap(*listen, *ttl, time.Now().UnixNano())
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("bootstrap directory on %v (ttl %v)\n", srv.Endpoint(), *ttl)
	waitForSignal()
	return nil
}

func runNode(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	listen := fs.String("listen", "0.0.0.0:0", "UDP address to bind")
	directory := fs.String("directory", "", "bootstrap directory endpoint")
	natStr := fs.String("nat", "", "NAT type: public or private")
	advertise := fs.String("advertise", "", "endpoint to advertise in the node's descriptor (empty = bound address; set to the NAT's public mapping)")
	id := fs.Uint64("id", 0, "node id (0 = random)")
	period := fs.Duration("period", time.Second, "gossip round period")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics and pprof (empty = disabled)")
	peerRate := fs.Float64("peer-rate", 0, "per-peer inbound datagrams/s (0 = default 64, burst 2x)")
	globalRate := fs.Float64("global-rate", 0, "aggregate inbound datagrams/s (0 = default 4096, burst 2x)")
	maxDatagram := fs.Int("max-datagram", 0, "reject inbound datagrams larger than this many bytes (0 = default 2048)")
	maxPending := fs.Int("max-pending", 0, "cap on concurrent pending exchanges (0 = default 64, negative = TTL-only)")
	inboxDepth := fs.Int("inbox-depth", 0, "receive queue depth, oldest dropped when full (0 = default 256)")
	keepaliveEvery := fs.Int("keepalive-every", 10, "NATed nodes ping public peers every N rounds to hold port mappings (0 = off)")
	compactEvery := fs.Int("compact-origins-every", 512, "compact the estimate-origin interner every N rounds (0 = off)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown window on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *directory == "" {
		return fmt.Errorf("-directory is required")
	}
	dir, err := parseEndpoint(*directory)
	if err != nil {
		return err
	}
	var natType addr.NatType
	switch *natStr {
	case "public":
		natType = addr.Public
	case "private":
		natType = addr.Private
	default:
		return fmt.Errorf("-nat must be public or private (use natprobe to find out)")
	}
	var adv addr.Endpoint
	if *advertise != "" {
		adv, err = parseEndpoint(*advertise)
		if err != nil {
			return err
		}
	}
	nodeID := addr.NodeID(*id)
	if nodeID == 0 {
		nodeID = addr.NodeID(rand.New(rand.NewSource(time.Now().UnixNano())).Uint64())
	}
	cfg := croupier.DefaultConfig()
	cfg.Params.Period = *period
	cfg.CompactOriginsEvery = *compactEvery

	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
	}
	node, err := deploy.StartNode(deploy.NodeConfig{
		Listen:    *listen,
		ID:        nodeID,
		Nat:       natType,
		Advertise: adv,
		Directory: dir,
		Croupier:  cfg,
		RateLimit: ratelimit.Config{
			PeerRate: *peerRate, PeerBurst: 2 * *peerRate,
			GlobalRate: *globalRate, GlobalBurst: 2 * *globalRate,
		},
		MaxDatagram:    *maxDatagram,
		MaxPending:     *maxPending,
		InboxDepth:     *inboxDepth,
		KeepaliveEvery: *keepaliveEvery,
		Registry:       reg,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Printf("node %v (%v) gossiping on %v\n", nodeID, natType, node.Endpoint())

	if reg != nil {
		// The pprof import registered its handlers on the default mux;
		// add the Prometheus scrape and the state snapshot next to them.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		http.HandleFunc("/state", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(node.State())
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics and pprof on http://%v/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "croupier-node: metrics server:", err)
			}
		}()
	}

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	sig := signalChan()
	for {
		select {
		case <-ticker.C:
			est, ok := node.Estimate()
			sample, sok := node.Sample()
			if !ok {
				fmt.Printf("round %3d: estimate pending, %d neighbors\n",
					node.Rounds(), len(node.Neighbors()))
				continue
			}
			line := fmt.Sprintf("round %3d: ratio=%.3f neighbors=%d", node.Rounds(), est, len(node.Neighbors()))
			if sok {
				line += fmt.Sprintf(" sample=%v", sample.ID)
			}
			fmt.Println(line)
		case s := <-sig:
			// Graceful lifecycle: stop initiating gossip, keep
			// answering in-flight exchanges until the pending table
			// drains (or the window runs out), then free the socket.
			fmt.Printf("%v: draining for up to %v...\n", s, *drain)
			if err := node.Shutdown(*drain); err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
			fmt.Println("drained; bye")
			return nil
		}
	}
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	duration := fs.Duration("duration", 10*time.Second, "how long to run the swarm")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics and pprof (empty = disabled)")
	flood := fs.Bool("flood", false, "blast junk and oversize datagrams at one node to exercise the hardening path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := deploy.ListenBootstrap("127.0.0.1:0", 10*time.Second, 1)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("bootstrap directory: %v\n", srv.Endpoint())

	cfg := croupier.DefaultConfig()
	cfg.Params = pss.Params{ViewSize: 10, ShuffleSize: 5, Period: 100 * time.Millisecond}

	reg := metrics.NewRegistry()
	if *metricsAddr != "" {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics and pprof on http://%v/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "croupier-node: metrics server:", err)
			}
		}()
	}

	var nodes []*deploy.Node
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 1; i <= 15; i++ {
		natType := addr.Private
		if i <= 5 {
			natType = addr.Public
		}
		n, err := deploy.StartNode(deploy.NodeConfig{
			Listen:         "127.0.0.1:0",
			ID:             addr.NodeID(i),
			Nat:            natType,
			Directory:      srv.Endpoint(),
			Croupier:       cfg,
			KeepaliveEvery: 10,
			Registry:       reg,
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
		fmt.Printf("started node %2d (%v) on %v\n", i, natType, n.Endpoint())
		if natType == addr.Public {
			time.Sleep(120 * time.Millisecond) // let publics register first
		}
	}

	stopFlood := make(chan struct{})
	if *flood {
		// A junk blaster far beyond the per-peer budget: the victim must
		// shed the excess at the rate limiter before any decode work, and
		// reject the oversize frames at the size check.
		attacker, err := net.Dial("udp", nodes[0].Endpoint().String())
		if err != nil {
			return fmt.Errorf("flood socket: %w", err)
		}
		fmt.Printf("flooding node %v with junk datagrams...\n", nodes[0].Endpoint())
		go func() {
			defer attacker.Close()
			junk := []byte("croupier-node demo: junk flood datagram")
			oversized := make([]byte, 4096)
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				for i := 0; i < 100; i++ {
					attacker.Write(junk)
				}
				attacker.Write(oversized)
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	fmt.Println("\ngossiping with 100 ms rounds (true ratio 5/15 = 0.333)...")
	seconds := int(*duration / time.Second)
	if seconds < 1 {
		seconds = 1
	}
	for i := 0; i < seconds; i++ {
		time.Sleep(time.Second)
		sum, cnt := 0.0, 0
		for _, n := range nodes {
			if est, ok := n.Estimate(); ok {
				sum += est
				cnt++
			}
		}
		if cnt == 0 {
			fmt.Printf("t=%2ds: no estimates yet\n", i+1)
			continue
		}
		fmt.Printf("t=%2ds: %d/%d nodes estimating, mean ratio %.3f\n",
			i+1, cnt, len(nodes), sum/float64(cnt))
	}
	close(stopFlood)
	if *flood {
		fmt.Printf("hardening: ratelimit_dropped=%d oversize=%d decode_errors=%d\n",
			reg.Counter("deploy_ratelimit_dropped_total", "").Value(),
			reg.Counter("deploy_oversize_total", "").Value(),
			reg.Counter("deploy_decode_errors_total", "").Value())
	}
	return nil
}

func waitForSignal() { <-signalChan() }

func signalChan() chan os.Signal {
	c := make(chan os.Signal, 1)
	signal.Notify(c, os.Interrupt, syscall.SIGTERM)
	return c
}
