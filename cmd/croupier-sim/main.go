// Command croupier-sim regenerates the paper's evaluation figures.
//
// Usage:
//
//	croupier-sim [flags] <experiment>
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6a fig6b fig6c fig7a fig7b all
//
// Each experiment writes a TSV table under -out and prints an ASCII
// rendition of the figure. -scale shrinks node counts for quick runs
// (e.g. -scale 0.1 runs Fig 1 with 500 instead of 5000 nodes); paper
// scale (-scale 1 -seeds 5) reproduces the published setup exactly but
// takes tens of minutes for the estimation figures. -parallel 0 fans
// the independent (variant, seed) simulations across every core; the
// merged figures are byte-identical to a sequential run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiment"
	"repro/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "croupier-sim:", err)
		os.Exit(1)
	}
}

type tsvWriter interface {
	WriteTSV(io.Writer) error
}

type renderer interface {
	Render() string
}

func run(args []string) error {
	fs := flag.NewFlagSet("croupier-sim", flag.ContinueOnError)
	var (
		scaleF   = fs.Float64("scale", 1.0, "node-count scale factor (1.0 = paper scale)")
		seeds    = fs.Int("seeds", 5, "number of runs to average (paper: 5)")
		rounds   = fs.Int("rounds", 0, "override measured rounds (0 = paper value)")
		parallel = fs.Int("parallel", 1, "worker goroutines for the (variant, seed) fan-out; 0 = all cores, 1 = sequential (results are identical either way)")
		shards   = fs.Int("shards", 1, "kernel shards per simulated world; 0 or 1 = sequential (figures are identical at any count)")
		outDir   = fs.String("out", "results", "directory for TSV output")
		noPlot   = fs.Bool("no-plot", false, "suppress terminal plots")
		verbose  = fs.Bool("v", false, "print one progress line per finished (variant, seed) job to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: croupier-sim [flags] <experiment>\n")
		fmt.Fprintf(fs.Output(), "experiments: fig1 fig2 fig3 fig4 fig5 fig6a fig6b fig6c fig7a fig7b all\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment required")
	}
	workers := *parallel
	if workers == 0 {
		workers = -1 // experiment.Scale: negative = GOMAXPROCS
	}
	scale := experiment.Scale{Factor: *scaleF, Seeds: *seeds, Rounds: *rounds, Workers: workers, Shards: *shards}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	names := []string{fs.Arg(0)}
	if fs.Arg(0) == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b"}
	}
	for _, name := range names {
		start := time.Now()
		if *verbose {
			// One line per finished simulation job, so multi-hour
			// paper-scale sweeps show liveness and remaining work, with
			// an ETA extrapolated from completed-job durations.
			name, start := name, time.Now()
			var eta *runner.ETA
			scale.Progress = func(done, total int) {
				if eta == nil {
					eta = runner.NewETASince(total, start)
				}
				line := fmt.Sprintf("# %s: job %d/%d done (%v elapsed",
					name, done, total, time.Since(start).Round(time.Second))
				if rem, ok := eta.Estimate(done); ok && done < total {
					line += fmt.Sprintf(", ~%v left", rem.Round(time.Second))
				}
				fmt.Fprintln(os.Stderr, line+")")
			}
		}
		res, err := runOne(name, scale)
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := res.WriteTSV(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Printf("# %s finished in %v, table written to %s\n", name, time.Since(start).Round(time.Millisecond), path)
		if !*noPlot {
			if r, ok := res.(renderer); ok {
				fmt.Println(r.Render())
			}
		}
	}
	return nil
}

// runOne dispatches one experiment by figure name.
func runOne(name string, s experiment.Scale) (tsvWriter, error) {
	switch name {
	case "fig1":
		cfg := experiment.NewFig1Config()
		cfg.Scale = s
		res, err := experiment.RunFig1(cfg)
		return res, err
	case "fig2":
		cfg := experiment.NewFig2Config()
		cfg.Scale = s
		res, err := experiment.RunFig2(cfg)
		return res, err
	case "fig3":
		cfg := experiment.NewFig3Config()
		cfg.Scale = s
		res, err := experiment.RunFig3(cfg)
		return res, err
	case "fig4":
		cfg := experiment.NewFig4Config()
		cfg.Scale = s
		res, err := experiment.RunFig4(cfg)
		return res, err
	case "fig5":
		cfg := experiment.NewFig5Config()
		cfg.Scale = s
		res, err := experiment.RunFig5(cfg)
		return res, err
	case "fig6a":
		cfg := experiment.NewFig6aConfig()
		cfg.Scale = s
		res, err := experiment.RunFig6a(cfg)
		return res, err
	case "fig6b":
		cfg := experiment.NewFig6bcConfig()
		cfg.Scale = s
		res, err := experiment.RunFig6b(cfg)
		return res, err
	case "fig6c":
		cfg := experiment.NewFig6bcConfig()
		cfg.Scale = s
		res, err := experiment.RunFig6c(cfg)
		return res, err
	case "fig7a":
		cfg := experiment.NewFig7aConfig()
		cfg.Scale = s
		res, err := experiment.RunFig7a(cfg)
		return res, err
	case "fig7b":
		cfg := experiment.NewFig7bConfig()
		cfg.Scale = s
		res, err := experiment.RunFig7b(cfg)
		return res, err
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}
