// Command croupier-scenario runs declarative adverse-network scenarios
// against any of the four peer-sampling systems — the general workload
// runner beyond the paper's fixed figures.
//
// Usage:
//
//	croupier-scenario -list
//	croupier-scenario [flags] <scenario>|all
//	croupier-scenario [flags] -file my-scenario.json
//
// Each run writes <out>/<scenario>-<kind>.tsv and .json and prints a
// summary. Runs are deterministic: the same scenario, kind, seed and
// scale produce byte-identical outputs. -scale shrinks populations for
// quick runs (-scale 0.1 runs the 1000-node library scenarios with 100
// nodes); -kind all compares the four systems head-to-head on one
// timeline; -parallel 0 fans the independent (scenario, kind) runs
// across every core without changing any output byte.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "croupier-scenario:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("croupier-scenario", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the scenario library and exit")
		file     = fs.String("file", "", "run a scenario from a JSON file instead of the library")
		kindF    = fs.String("kind", "croupier", "protocol: croupier, cyclon, gozar, nylon, or all")
		scale    = fs.Float64("scale", 1.0, "population scale factor (1.0 = as declared)")
		seed     = fs.Int64("seed", 1, "simulation seed")
		loss     = fs.Float64("loss", 0, "base packet-loss probability")
		natid    = fs.Bool("natid", false, "run NAT-type identification at every join (slower)")
		probe    = fs.Int("probe", 0, "override the probe period in rounds (0 = scenario default)")
		parallel = fs.Int("parallel", 1, "worker goroutines for the (scenario, kind) fan-out; 0 = all cores, 1 = sequential (outputs are identical either way)")
		shards   = fs.Int("shards", 1, "kernel shards per simulated world; 0 or 1 = sequential (outputs are identical at any count)")
		outDir   = fs.String("out", "results/scenarios", "directory for TSV/JSON output")
		verbose  = fs.Bool("v", false, "print one progress line per finished (scenario, kind) job to stderr")
		httpAddr = fs.String("http", "", "serve a live dashboard, SSE stream and Prometheus scrape on this address; forces sequential runs and keeps serving after the sweep finishes")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: croupier-scenario -list\n")
		fmt.Fprintf(fs.Output(), "       croupier-scenario [flags] <scenario>|all\n")
		fmt.Fprintf(fs.Output(), "       croupier-scenario [flags] -file scenario.json\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range scenario.Names() {
			sc, err := scenario.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %d nodes, %d rounds, %d events\n", name, sc.Publics+sc.Privates, sc.Rounds, len(sc.Events))
			fmt.Printf("             %s\n", sc.Description)
		}
		return nil
	}

	kinds, err := parseKinds(*kindF)
	if err != nil {
		return err
	}
	scenarios, err := selectScenarios(fs.Args(), *file)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	// One job per (scenario, kind) pair. Each run is an independent
	// world, so the fan-out parallelises freely; results come back in
	// job order and are written and summarised deterministically.
	type job struct {
		sc   scenario.Scenario
		kind world.Kind
	}
	type outcome struct {
		res     *scenario.Result
		elapsed time.Duration
	}
	var jobs []job
	for _, sc := range scenarios {
		if *probe > 0 {
			sc.ProbeEvery = *probe
		}
		for _, kind := range kinds {
			jobs = append(jobs, job{sc: sc, kind: kind})
		}
	}
	// The dashboard streams one job at a time into a single registry, so
	// -http forces the fan-out sequential (outputs are identical anyway).
	var dash *dashServer
	if *httpAddr != "" {
		dash = newDashServer()
		ln, err := dash.serve(*httpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("# dashboard on http://%v/ (SSE /events, Prometheus /metrics)\n", ln.Addr())
		*parallel = 1
	}
	workers := *parallel
	if workers == 0 {
		workers = -1 // runner: ≤0 (other than the flag's 1) = GOMAXPROCS
	}
	var progress func(done, total int)
	if *verbose {
		// One line per finished run, so long multi-scenario sweeps show
		// liveness and remaining work, with an ETA extrapolated from
		// completed-job durations. Progress order is completion order;
		// the written results stay in deterministic job order.
		sweepStart := time.Now()
		var eta *runner.ETA
		progress = func(done, total int) {
			if eta == nil {
				eta = runner.NewETASince(total, sweepStart)
			}
			line := fmt.Sprintf("# job %d/%d done (%v elapsed",
				done, total, time.Since(sweepStart).Round(time.Second))
			if rem, ok := eta.Estimate(done); ok && done < total {
				line += fmt.Sprintf(", ~%v left", rem.Round(time.Second))
			}
			fmt.Fprintln(os.Stderr, line+")")
		}
	}
	outcomes, err := runner.Map(runner.Options{Workers: workers, Progress: progress}, jobs, func(j job) (outcome, error) {
		start := time.Now()
		rc := scenario.RunConfig{
			Kind:     j.kind,
			Seed:     *seed,
			Scale:    *scale,
			BaseLoss: *loss,
			RunNatID: *natid,
			Shards:   *shards,
		}
		var stopPump chan struct{}
		var pumpDone chan struct{}
		if dash != nil {
			// Fresh registry per job: the scrape and the stream both
			// describe exactly one run at a time.
			reg := metrics.NewRegistry()
			rc.Registry = reg
			rc.Observer = func(s scenario.Sample) {
				dash.broadcast("sample", sampleEvent{Scenario: j.sc.Name, Kind: j.kind.String(), Sample: s})
			}
			dash.broadcast("job", jobStart{
				Scenario: j.sc.Name, Kind: j.kind.String(),
				Publics: j.sc.Publics, Privates: j.sc.Privates, Rounds: j.sc.Rounds,
			})
			dash.setRegistry(reg)
			stopPump = make(chan struct{})
			pumpDone = make(chan struct{})
			dash.startMetricsPump(j.sc.Name, j.kind.String(), time.Second, stopPump, pumpDone)
		}
		res, err := scenario.Run(j.sc, rc)
		if dash != nil {
			// The registry stays attached after the run so late scrapes
			// still see the final totals; the next job replaces it.
			close(stopPump)
			<-pumpDone
		}
		if err != nil {
			return outcome{}, err
		}
		return outcome{res: res, elapsed: time.Since(start)}, nil
	})
	if err != nil {
		return err
	}
	for i, oc := range outcomes {
		base := filepath.Join(*outDir, fmt.Sprintf("%s-%s", jobs[i].sc.Name, jobs[i].kind))
		if err := writeResult(oc.res, base); err != nil {
			return err
		}
		printSummary(oc.res, base, oc.elapsed)
	}
	if dash != nil {
		dash.broadcast("done", struct{}{})
		fmt.Println("# all runs complete; dashboard still serving (interrupt to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	return nil
}

// parseKinds resolves the -kind flag.
func parseKinds(s string) ([]world.Kind, error) {
	all := []world.Kind{world.KindCroupier, world.KindCyclon, world.KindGozar, world.KindNylon}
	if s == "all" {
		return all, nil
	}
	for _, k := range all {
		if k.String() == s {
			return []world.Kind{k}, nil
		}
	}
	return nil, fmt.Errorf("unknown kind %q (croupier, cyclon, gozar, nylon, all)", s)
}

// selectScenarios resolves the positional args and -file into a run list.
func selectScenarios(args []string, file string) ([]scenario.Scenario, error) {
	if file != "" {
		if len(args) != 0 {
			return nil, fmt.Errorf("-file and a scenario name are mutually exclusive")
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, fmt.Errorf("open scenario file: %w", err)
		}
		defer f.Close()
		sc, err := scenario.ParseJSON(f)
		if err != nil {
			return nil, err
		}
		return []scenario.Scenario{sc}, nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("exactly one scenario name (or 'all') required; see -list")
	}
	if args[0] == "all" {
		var out []scenario.Scenario
		for _, name := range scenario.Names() {
			sc, err := scenario.Lookup(name)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
		}
		return out, nil
	}
	sc, err := scenario.Lookup(args[0])
	if err != nil {
		return nil, err
	}
	return []scenario.Scenario{sc}, nil
}

// writeResult exports both formats next to each other.
func writeResult(res *scenario.Result, base string) error {
	for _, ext := range []string{".tsv", ".json"} {
		f, err := os.Create(base + ext)
		if err != nil {
			return fmt.Errorf("create %s: %w", base+ext, err)
		}
		if ext == ".tsv" {
			err = res.WriteTSV(f)
		} else {
			err = res.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", base+ext, err)
		}
	}
	return nil
}

// printSummary renders the run's headline numbers.
func printSummary(res *scenario.Result, base string, elapsed time.Duration) {
	fmt.Printf("# %s/%s: %d rounds, %d probes in %v → %s.{tsv,json}\n",
		res.Scenario, res.Kind, res.Rounds, len(res.Samples), elapsed.Round(time.Millisecond), base)
	last := res.Samples[len(res.Samples)-1]
	fmt.Printf("  final: alive=%d ratio=%s ω̂-err(avg)=%s cluster=%s indeg(mean±std)=%s±%s traffic=%sB/node/s\n",
		last.Alive, fmtF(last.Ratio), fmtF(last.EstErrAvg), fmtF(last.ClusterFrac),
		fmtF(last.InDegMean), fmtF(last.InDegStd), fmtF(last.BytesPerNodeSec))
	for _, rec := range res.Recoveries {
		if rec.Rounds >= 0 {
			fmt.Printf("  recovery after %s@r%g: %g rounds (reconverged at r%g)\n",
				rec.Event, rec.AtRound, rec.Rounds, rec.RecoveredRound)
		} else {
			fmt.Printf("  recovery after %s@r%g: NOT reconverged by r%d\n", rec.Event, rec.AtRound, res.Rounds)
		}
	}
}

// fmtF renders a metric float compactly, keeping NaN readable.
func fmtF(f scenario.F) string {
	v := float64(f)
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.4g", v)
}
