package main

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// dashboard.html is the single-file live view: it connects back to
// /events and renders the streamed samples and metric snapshots.
//
//go:embed dashboard.html
var dashboardHTML []byte

// frame is one server-sent event, retained for replay so a client
// connecting mid-run still receives the full series.
type frame struct {
	event string
	data  []byte
}

// dashServer streams scenario progress to browsers over SSE and serves
// the current job's registry as a Prometheus scrape. Runs execute
// sequentially while the server is active, so at any instant there is
// at most one live registry.
type dashServer struct {
	mu      sync.Mutex
	reg     *metrics.Registry // current job's registry; nil between jobs
	history []frame
	clients map[chan frame]struct{}
	done    bool
}

func newDashServer() *dashServer {
	return &dashServer{clients: make(map[chan frame]struct{})}
}

// broadcast appends one event to the replay history and fans it out to
// connected clients. Slow clients are skipped, not waited for: SSE is
// lossy-live on top of a lossless replay baseline.
func (s *dashServer) broadcast(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	f := frame{event: event, data: data}
	s.mu.Lock()
	s.history = append(s.history, f)
	if event == "done" {
		s.done = true
	}
	for ch := range s.clients {
		select {
		case ch <- f:
		default:
		}
	}
	s.mu.Unlock()
}

// setRegistry installs the active job's registry (nil detaches it).
func (s *dashServer) setRegistry(reg *metrics.Registry) {
	s.mu.Lock()
	s.reg = reg
	s.mu.Unlock()
}

// registry returns the active registry, or nil between jobs.
func (s *dashServer) registry() *metrics.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg
}

// serve binds addr and serves the dashboard until the process exits.
func (s *dashServer) serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dashboard listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML)
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}

// handleMetrics serves the current registry in Prometheus text format.
// Between jobs (or before the first) the scrape is valid and empty.
func (s *dashServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if reg := s.registry(); reg != nil {
		_ = reg.WritePrometheus(w)
	}
}

// handleEvents is the SSE endpoint: full history replay, then live
// frames until the client goes away.
func (s *dashServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Register first, then snapshot the history: a frame broadcast
	// between the two shows up in both, and the client-side renderer is
	// idempotent on replayed sample rows, so a rare duplicate is
	// harmless — a gap would not be.
	ch := make(chan frame, 256)
	s.mu.Lock()
	s.clients[ch] = struct{}{}
	replay := make([]frame, len(s.history))
	copy(replay, s.history)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.clients, ch)
		s.mu.Unlock()
	}()

	write := func(f frame) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.event, f.data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, f := range replay {
		if !write(f) {
			return
		}
	}
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case f := <-ch:
			if !write(f) {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// jobStart is the "job" event payload announcing one (scenario, kind)
// run; samples that follow belong to it until the next job event.
type jobStart struct {
	Scenario string `json:"scenario"`
	Kind     string `json:"kind"`
	Publics  int    `json:"publics"`
	Privates int    `json:"privates"`
	Rounds   int    `json:"rounds"`
}

// sampleEvent is the "sample" event payload: one probe, tagged with its
// job identity so interleaved renders stay unambiguous.
type sampleEvent struct {
	Scenario string          `json:"scenario"`
	Kind     string          `json:"kind"`
	Sample   scenario.Sample `json:"sample"`
}

// metricsEvent is the "metrics" event payload: a full registry snapshot
// at a wall-clock instant, from which the client derives rates.
type metricsEvent struct {
	Scenario string           `json:"scenario"`
	Kind     string           `json:"kind"`
	UnixMS   int64            `json:"unix_ms"`
	Snap     metrics.Snapshot `json:"snap"`
}

// startMetricsPump broadcasts registry snapshots at the given period
// until stop is closed, then emits one final snapshot so the stream
// always ends on the job's complete totals.
func (s *dashServer) startMetricsPump(scName, kind string, period time.Duration, stop <-chan struct{}, stopped chan<- struct{}) {
	go func() {
		defer close(stopped)
		t := time.NewTicker(period)
		defer t.Stop()
		emit := func() {
			reg := s.registry()
			if reg == nil {
				return
			}
			s.broadcast("metrics", metricsEvent{
				Scenario: scName, Kind: kind,
				UnixMS: time.Now().UnixMilli(),
				Snap:   reg.Snapshot(),
			})
		}
		for {
			select {
			case <-t.C:
				emit()
			case <-stop:
				emit()
				return
			}
		}
	}()
}
