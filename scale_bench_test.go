// Scale benchmarks: the cost of one gossip round at deployment sizes
// far beyond the paper's few-hundred-node evaluation (1k / 5k / 20k
// nodes, all four protocols). These are the perf-trajectory numbers
// recorded in BENCH_4.json by scripts/bench.sh; the kernel work they
// measure is the calendar-queue event scheduler and the dense
// node-indexed network tables.
//
// The suite is expensive to set up (a 20k-node world joins 20k hosts
// and warms up ten rounds), so it is benchmark-only: nothing here runs
// under plain `go test`. The short-mode scale smoke test lives in
// scale_smoke_test.go instead.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/world"
)

// scaleWorld builds an n-node deployment (20% public, the paper's
// ratio) and warms it up for sixty rounds past the end of the join
// wave, so views, NAT tables, pools and the estimate stores (whose
// history window is fifty rounds) are in steady state before
// measurement begins.
func scaleWorld(tb testing.TB, kind world.Kind, n int) *world.World {
	tb.Helper()
	w, err := world.New(world.Config{Kind: kind, Seed: 1, SkipNatID: true})
	if err != nil {
		tb.Fatal(err)
	}
	pub := n / 5
	joinGap := time.Millisecond
	w.MixedPoissonJoins(0, pub, n-pub, joinGap)
	warmUntil := time.Duration(n)*joinGap + 60*time.Second
	w.RunUntil(warmUntil)
	return w
}

func BenchmarkScaleRound(b *testing.B) {
	kinds := []world.Kind{world.KindCroupier, world.KindCyclon, world.KindGozar, world.KindNylon}
	for _, kind := range kinds {
		for _, n := range []int{1000, 5000, 20000} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				w := scaleWorld(b, kind, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.RunUntil(w.Sched.Now() + time.Second)
				}
			})
		}
	}
}

// BenchmarkWorldConstruction measures the join wave itself: building a
// croupier world and running the simulation until every node of an
// n-node mixed Poisson join stream (1 ms mean gap, 20% public) has
// joined. This is the cost a 50k-node experiment pays before its first
// warm round — host attachment, gateway construction, service port
// binds, bootstrap directory draws, protocol construction, and the
// partial gossip rounds nodes run while the wave is still arriving.
// The stream's last arrival lands near — but randomly past or short
// of — the n·gap horizon, so after running to the horizon the tail is
// drained until the population is complete.
func BenchmarkWorldConstruction(b *testing.B) {
	for _, n := range []int{5000, 20000, 50000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := world.New(world.Config{Kind: world.KindCroupier, Seed: 1, SkipNatID: true})
				if err != nil {
					b.Fatal(err)
				}
				pub := n / 5
				w.MixedPoissonJoins(0, pub, n-pub, time.Millisecond)
				t := time.Duration(n) * time.Millisecond
				w.RunUntil(t)
				for len(w.Nodes()) < n {
					t += 50 * time.Millisecond
					w.RunUntil(t)
				}
			}
		})
	}
}
